"""The differential schedule fuzzer (``tools/fuzz_schedules.py``).

A handful of fixed seeds run the full oracle stack in-suite (CI runs a
larger smoke separately); the harness internals -- case drawing,
corrupted-log detection, minimization, repro printout -- are tested
directly so a fuzzer bug cannot silently turn the tool into a no-op.
"""

import importlib.util
import io
import pathlib
import sys

import pytest

from repro.dram.validation import CommandRecord, TimingViolation, validate_log

REPO = pathlib.Path(__file__).resolve().parent.parent


def _load_fuzzer():
    spec = importlib.util.spec_from_file_location(
        "fuzz_schedules", REPO / "tools" / "fuzz_schedules.py")
    module = importlib.util.module_from_spec(spec)
    # Register before exec: the tool's dataclasses resolve their
    # (string) annotations through sys.modules.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


fuzz = _load_fuzzer()


class TestCaseDrawing:
    def test_draws_are_deterministic(self):
        assert fuzz.draw_case(12) == fuzz.draw_case(12)
        assert fuzz.build_traces(fuzz.draw_case(12))[0].entries == \
            fuzz.build_traces(fuzz.draw_case(12))[0].entries

    def test_seeds_round_robin_all_presets(self):
        from repro.sim import config as cfgs
        presets = cfgs.all_presets()
        assert len(presets) == 20
        assert [p.backend for p in presets[:17]] == ["dram"] * 17
        names = {fuzz.draw_case(seed).config_name
                 for seed in range(len(presets))}
        assert names == {p.name for p in presets}

    def test_overrides_pin_the_drawn_shape(self):
        case = fuzz.draw_case(5, cores=2, accesses=50)
        assert case.cores == 2
        assert case.accesses == 50


class TestOracles:
    @pytest.mark.parametrize("seed", [0, 3, 7, 13])
    def test_fixed_seeds_pass_clean(self, seed):
        case = fuzz.draw_case(seed, accesses=80)
        assert fuzz.check_case(case) is None

    def test_validator_wired_in_catches_corrupted_log(self):
        """The same validate_log the fuzzer calls rejects a 5-ACT burst."""
        case = fuzz.draw_case(0, cores=1, accesses=30)
        config = fuzz.build_config(case)
        timing = config.timing()
        assert timing.tFAW > 0
        log = [CommandRecord("ACT", i * timing.tRRD, i, 0, (0, 0), 1)
               for i in range(5)]
        with pytest.raises(TimingViolation, match="tFAW"):
            validate_log(log, timing, config.bus_policy)


class TestMinimizer:
    def test_shrinks_while_failure_reproduces(self):
        case = fuzz.Case(seed=1, config_name="DDR4",
                         cores=4, accesses=160)
        # A synthetic failure that any case with >= 40 accesses and
        # >= 2 cores still exhibits.
        minimized = fuzz.minimize(
            case, lambda c: ("boom" if c.accesses >= 40 and c.cores >= 2
                             else None))
        assert minimized.accesses == 40
        assert minimized.cores == 2

    def test_keeps_unshrinkable_case(self):
        case = fuzz.Case(seed=1, config_name="DDR4",
                         cores=1, accesses=160)
        minimized = fuzz.minimize(
            case, lambda c: "boom" if c.accesses == 160 else None)
        assert minimized == case

    def test_repro_command_replays_the_case(self):
        case = fuzz.Case(seed=9, config_name="BG32",
                         cores=3, accesses=44)
        command = case.repro_command()
        assert "--start 9" in command
        assert "--cores 3" in command
        assert "--accesses 44" in command
        assert "tools/fuzz_schedules.py" in command


class TestHarness:
    def test_run_seeds_reports_clean(self):
        out = io.StringIO()
        failures = fuzz.run_seeds(0, 2, accesses=60, out=out)
        assert failures == 0
        assert "ok" in out.getvalue()

    def test_failure_prints_minimized_repro(self, monkeypatch):
        out = io.StringIO()
        # Force every oracle call to fail so the minimizer and the
        # repro printout run without needing a real scheduler bug.
        monkeypatch.setattr(
            fuzz, "check_case",
            lambda case, presets=None, sharded=False: "forced")
        failures = fuzz.run_seeds(4, 1, out=out)
        assert failures == 1
        text = out.getvalue()
        assert "FAIL" in text
        assert "--start 4 --seeds 1" in text

    def test_main_config_filter_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            fuzz.main(["--config", "no-such-config"])

    def test_main_single_seed(self, capsys):
        assert fuzz.main(["--seeds", "1", "--accesses", "40"]) == 0
        assert "all 1 seeds clean" in capsys.readouterr().out
