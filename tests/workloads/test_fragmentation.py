"""Tests for the fragmentation-aware physical allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.fragmentation import (
    FRAMES_PER_HUGE,
    HUGE_SIZE,
    PAGE_SIZE,
    OutOfMemoryError,
    PhysicalMemory,
    VirtualMemory,
)


class TestPhysicalMemory:
    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            PhysicalMemory(total_bytes=HUGE_SIZE + 1)

    def test_rejects_bad_fragmentation(self):
        with pytest.raises(ValueError):
            PhysicalMemory(fragmentation=1.5)

    def test_zero_fragmentation_always_huge(self):
        pm = PhysicalMemory(1 << 28, fragmentation=0.0, seed=1)
        for _ in range(50):
            base = pm.allocate_huge()
            assert base is not None
            assert base % HUGE_SIZE == 0

    def test_full_fragmentation_never_huge(self):
        pm = PhysicalMemory(1 << 28, fragmentation=1.0, seed=1)
        assert all(pm.allocate_huge() is None for _ in range(50))

    def test_huge_allocations_unique(self):
        pm = PhysicalMemory(1 << 28, fragmentation=0.0, seed=2)
        bases = [pm.allocate_huge() for _ in range(100)]
        assert len(set(bases)) == 100

    def test_frames_unique_and_aligned(self):
        pm = PhysicalMemory(1 << 26, fragmentation=0.5, seed=3)
        frames = [pm.allocate_frame() for _ in range(2000)]
        assert len(set(frames)) == 2000
        assert all(f % PAGE_SIZE == 0 for f in frames)

    def test_exhaustion_raises(self):
        pm = PhysicalMemory(HUGE_SIZE * 2, fragmentation=0.0, seed=0)
        pm.allocate_huge()
        pm.allocate_huge()
        with pytest.raises(OutOfMemoryError):
            pm.allocate_huge()

    def test_owner_bands_cluster(self):
        """Per-owner allocations are mostly contiguous (region-1 source)."""
        pm = PhysicalMemory(1 << 34, fragmentation=0.0, seed=4,
                            jump_probability=0.0)
        bases = [pm.allocate_huge(owner=7) for _ in range(50)]
        deltas = [b - a for a, b in zip(bases, bases[1:])]
        assert all(d == HUGE_SIZE for d in deltas)

    def test_distinct_owners_get_distinct_bands(self):
        pm = PhysicalMemory(1 << 34, fragmentation=0.0, seed=5,
                            jump_probability=0.0)
        a = pm.allocate_huge(owner=0)
        b = pm.allocate_huge(owner=1)
        assert abs(a - b) > HUGE_SIZE  # almost surely far apart

    def test_jumps_break_bands(self):
        pm = PhysicalMemory(1 << 34, fragmentation=0.0, seed=6,
                            jump_probability=1.0)
        bases = [pm.allocate_huge(owner=0) for _ in range(50)]
        deltas = [abs(b - a) for a, b in zip(bases, bases[1:])]
        assert any(d != HUGE_SIZE for d in deltas)

    def test_frames_allocated_counter(self):
        pm = PhysicalMemory(1 << 26, fragmentation=0.0, seed=0)
        pm.allocate_huge()
        assert pm.frames_allocated == FRAMES_PER_HUGE
        pm2 = PhysicalMemory(1 << 26, fragmentation=1.0, seed=0)
        pm2.allocate_frame()
        assert pm2.frames_allocated == 1


class TestVirtualMemory:
    def test_translation_deterministic(self):
        pm = PhysicalMemory(1 << 28, fragmentation=0.3, seed=0)
        vm = VirtualMemory(pm)
        a = vm.translate(0x12345)
        assert vm.translate(0x12345) == a

    def test_offset_preserved_within_page(self):
        pm = PhysicalMemory(1 << 28, fragmentation=1.0, seed=0)
        vm = VirtualMemory(pm)
        base = vm.translate(0x4000)
        assert vm.translate(0x4040) == base + 0x40

    def test_huge_region_contiguous(self):
        pm = PhysicalMemory(1 << 28, fragmentation=0.0, seed=0)
        vm = VirtualMemory(pm)
        first = vm.translate(0)
        assert vm.translate(HUGE_SIZE - 64) == first + HUGE_SIZE - 64
        assert vm.huge_regions == 1

    def test_fragmented_region_scatters(self):
        pm = PhysicalMemory(1 << 28, fragmentation=1.0, seed=0)
        vm = VirtualMemory(pm)
        a = vm.translate(0)
        b = vm.translate(PAGE_SIZE)
        assert abs(b - a) != PAGE_SIZE or (b - a) == PAGE_SIZE
        assert vm.fragmented_regions == 1

    def test_negative_vaddr_rejected(self):
        pm = PhysicalMemory(1 << 28, fragmentation=0.0)
        with pytest.raises(ValueError):
            VirtualMemory(pm).translate(-1)

    def test_huge_page_rate(self):
        pm = PhysicalMemory(1 << 30, fragmentation=0.0, seed=0)
        vm = VirtualMemory(pm)
        for region in range(10):
            vm.translate(region * HUGE_SIZE)
        assert vm.huge_page_rate == 1.0

    def test_huge_page_rate_matches_fragmentation(self):
        pm = PhysicalMemory(1 << 34, fragmentation=0.5, seed=42)
        vm = VirtualMemory(pm)
        for region in range(400):
            vm.translate(region * HUGE_SIZE)
        assert 0.35 < vm.huge_page_rate < 0.65

    def test_empty_vm_rate_zero(self):
        pm = PhysicalMemory(1 << 28)
        assert VirtualMemory(pm).huge_page_rate == 0.0


@settings(max_examples=60, deadline=None)
@given(
    frag=st.floats(0.0, 1.0),
    vaddrs=st.lists(st.integers(0, (1 << 28) - 64), min_size=1,
                    max_size=100),
)
def test_translation_is_injective_per_line(frag, vaddrs):
    """Property: distinct cache lines never map to the same frame+offset."""
    pm = PhysicalMemory(1 << 32, fragmentation=frag, seed=9)
    vm = VirtualMemory(pm)
    lines = {v & ~63 for v in vaddrs}
    physical = {line: vm.translate(line) for line in lines}
    assert len(set(physical.values())) == len(lines)
