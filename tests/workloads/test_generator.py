"""Tests for trace generation, profiles and mixes."""

import pytest

from repro.workloads.fragmentation import PhysicalMemory
from repro.workloads.generator import (
    ROW_SPAN_BYTES,
    StreamCursor,
    TraceGenerator,
    generate_traces,
)
from repro.workloads.mixes import (
    MIXES,
    MIX_NAMES,
    benchmark_names,
    mix_intensity,
    mix_profiles,
    mix_traces,
)
from repro.workloads.profiles import PROFILES, BenchmarkProfile, profile

import random


class TestProfiles:
    def test_all_ten_benchmarks_present(self):
        assert len(PROFILES) == 10
        assert "mcf" in PROFILES and "cactusADM" in PROFILES

    def test_intensity_classes_match_tab3(self):
        high = {"mcf", "lbm", "gemsFDTD", "omnetpp", "soplex"}
        for name, prof in PROFILES.items():
            expected = "H" if name in high else "M"
            assert prof.intensity == expected, name

    def test_mean_gap_from_mpki(self):
        p = profile("mcf")
        assert p.mean_gap == pytest.approx(1000 / p.mpki - 1)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile("doom")

    def test_validation_rejects_bad_mpki(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", mpki=0, intensity="H", footprint_mb=1,
                             stream_fraction=0.5, stream_count=1,
                             hot_fraction=0.5, hot_set=0.1,
                             write_fraction=0.3)

    def test_validation_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", mpki=10, intensity="H", footprint_mb=1,
                             stream_fraction=1.5, stream_count=1,
                             hot_fraction=0.5, hot_set=0.1,
                             write_fraction=0.3)


class TestStreamCursor:
    def test_sequential_walk(self):
        rng = random.Random(0)
        c = StreamCursor(rng, 1 << 20)
        a, b = c.next(), c.next()
        assert b == a + 64

    def test_wraps_inside_footprint(self):
        rng = random.Random(0)
        c = StreamCursor(rng, 1 << 12)
        for _ in range(200):
            assert 0 <= c.next() < (1 << 12)

    def test_partner_starts_rows_away(self):
        rng = random.Random(3)
        lead = StreamCursor(rng, 1 << 28)
        follow = StreamCursor(rng, 1 << 28, partner=lead)
        delta = follow.position - lead.position
        if delta < 0:
            delta += 1 << 28
        assert 0 < delta <= 8 * ROW_SPAN_BYTES + 128 * 64


class TestTraceGenerator:
    def make(self, name="lbm", frag=0.1, seed=0):
        pm = PhysicalMemory(1 << 34, fragmentation=frag, seed=seed)
        return TraceGenerator(profile(name), pm, seed=seed)

    def test_generates_requested_count(self):
        t = self.make().generate(500)
        assert len(t) == 500

    def test_addresses_line_aligned(self):
        t = self.make().generate(300)
        assert all(e.address % 64 == 0 for e in t)

    def test_mpki_close_to_profile(self):
        t = self.make("lbm").generate(4000)
        assert t.mpki() == pytest.approx(profile("lbm").mpki, rel=0.2)

    def test_write_fraction_close_to_profile(self):
        t = self.make("lbm").generate(4000)
        assert t.writes / len(t) == pytest.approx(
            profile("lbm").write_fraction, abs=0.05)

    def test_deterministic_for_seed(self):
        a = self.make(seed=5).generate(200)
        b = self.make(seed=5).generate(200)
        assert a.entries == b.entries

    def test_different_seeds_differ(self):
        a = self.make(seed=5).generate(200)
        b = self.make(seed=6).generate(200)
        assert a.entries != b.entries

    def test_streaming_app_has_spatial_locality(self):
        t = self.make("lbm").generate(2000)
        adjacent = sum(
            1 for x, y in zip(t.entries, t.entries[1:])
            if abs(y.address - x.address) <= 128)
        assert adjacent > 200  # plenty of sequential pairs

    def test_random_app_has_little_spatial_locality(self):
        t = self.make("mcf").generate(2000)
        adjacent = sum(
            1 for x, y in zip(t.entries, t.entries[1:])
            if abs(y.address - x.address) <= 128)
        assert adjacent < 400


class TestFragmentationEffect:
    def high_bit_stability(self, frag):
        pm = PhysicalMemory(1 << 34, fragmentation=frag, seed=1)
        gen = TraceGenerator(profile("lbm"), pm, seed=1)
        t = gen.generate(2000)
        tops = [e.address >> 30 for e in t.entries]
        same = sum(1 for a, b in zip(tops, tops[1:]) if a == b)
        return same / len(tops)

    def test_fragmentation_reduces_high_order_locality(self):
        assert self.high_bit_stability(0.1) > self.high_bit_stability(0.9)


class TestMixes:
    def test_nine_mixes(self):
        assert len(MIX_NAMES) == 9
        assert MIX_NAMES[0] == "mix0"

    def test_mixes_match_tab3(self):
        names, sig = MIXES["mix0"]
        assert names == ("mcf", "lbm", "omnetpp", "gemsFDTD")
        assert sig == "H:H:H:H"
        assert mix_intensity("mix8") == "M:M:M:M"

    def test_mix_profiles_resolve(self):
        profs = mix_profiles("mix4")
        assert [p.name for p in profs] == list(MIXES["mix4"][0])

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError):
            mix_profiles("mix99")

    def test_mix_traces_four_cores(self):
        traces = mix_traces("mix7", accesses_per_core=100, seed=0)
        assert len(traces) == 4
        assert all(len(t) == 100 for t in traces)

    def test_benchmark_names_cover_all(self):
        names = benchmark_names()
        assert set(names) == set(PROFILES)

    def test_generate_traces_shares_physical_memory(self):
        traces = generate_traces(mix_profiles("mix0"), 200, seed=0)
        # Different programs must not map to identical physical lines.
        seen = [set(e.address for e in t.entries) for t in traces]
        for i in range(len(seen)):
            for j in range(i + 1, len(seen)):
                assert not (seen[i] & seen[j])
