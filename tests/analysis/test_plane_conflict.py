"""Tests for the Fig. 4 plane-conflict trace analysis."""

import pytest

from repro.analysis.plane_conflict import (
    FIG4_PLANE_COUNTS,
    analyze_plane_conflicts,
    timestamp_trace,
)
from repro.controller.mapping import skylake_mapping
from repro.cpu.trace import Trace, TraceEntry

MAPPING = skylake_mapping(subbanked=True)


def trace_of(specs):
    return Trace.from_entries(
        [TraceEntry(g, False, a) for g, a in specs])


def address(subbank, row, mapping=MAPPING):
    """Physical address hitting bank (0,0) of channel 0."""
    from repro.controller.transaction import DramCoordinates
    coords = DramCoordinates(channel=0, rank=0, bank_group=0, bank=0,
                             subbank=subbank, row=row, column=0)
    return mapping.encode(coords)


class TestTimestamping:
    def test_times_monotone(self):
        t = trace_of([(10, 0x1000), (5, 0x2000), (0, 0x3000)])
        stamped = timestamp_trace(t, MAPPING)
        times = [a.time for a in stamped]
        assert times == sorted(times)
        assert times[0] > 0

    def test_effective_ipc_stretches_time(self):
        t = trace_of([(100, 0x1000)])
        slow = timestamp_trace(t, MAPPING, effective_ipc=1.0)
        fast = timestamp_trace(t, MAPPING, effective_ipc=4.0)
        assert slow[0].time > fast[0].time


class TestConflictDetection:
    def test_same_plane_cross_subbank_conflicts(self):
        # Two near-simultaneous accesses: same bank, opposite sub-banks,
        # different rows with equal MSBs -> conflict at low plane counts.
        rows = (0b01 << 14, (0b01 << 14) | 1)
        t = trace_of([(0, address(0, rows[0])), (0, address(1, rows[1]))])
        res = analyze_plane_conflicts([t], MAPPING, plane_counts=(4,))
        assert res[4].plane_conflict == 2

    def test_different_plane_no_conflict(self):
        rows = (0b00 << 14, 0b11 << 14)
        t = trace_of([(0, address(0, rows[0])), (0, address(1, rows[1]))])
        res = analyze_plane_conflicts([t], MAPPING, plane_counts=(4,))
        assert res[4].plane_conflict == 0
        assert res[4].no_plane_conflict == 2

    def test_same_row_does_not_conflict(self):
        row = 0b01 << 14
        t = trace_of([(0, address(0, row)), (0, address(1, row))])
        res = analyze_plane_conflicts([t], MAPPING, plane_counts=(4,))
        assert res[4].plane_conflict == 0
        assert res[4].overlapping == 2

    def test_same_subbank_not_counted_as_overlap(self):
        t = trace_of([(0, address(0, 1)), (0, address(0, 2))])
        res = analyze_plane_conflicts([t], MAPPING, plane_counts=(4,))
        assert res[4].overlapping == 0

    def test_distant_in_time_not_counted(self):
        # Gap huge => far outside the tRC window.
        t = trace_of([(0, address(0, 0b01 << 14)),
                      (10**6, address(1, (0b01 << 14) | 1))])
        res = analyze_plane_conflicts([t], MAPPING, plane_counts=(4,))
        assert res[4].overlapping == 0

    def test_different_banks_never_interact(self):
        from repro.controller.transaction import DramCoordinates
        a = MAPPING.encode(DramCoordinates(0, 0, 0, 0, 0, 5, 0))
        b = MAPPING.encode(DramCoordinates(0, 0, 0, 1, 1, 5, 0))
        t = trace_of([(0, a), (0, b)])
        res = analyze_plane_conflicts([t], MAPPING, plane_counts=(2,))
        assert res[2].overlapping == 0


class TestCurveShape:
    def test_conflicts_decrease_with_planes(self):
        import random
        rng = random.Random(0)
        specs = []
        for _ in range(300):
            specs.append((rng.randrange(3),
                          address(rng.randrange(2),
                                  rng.randrange(1 << 16))))
        t = trace_of(specs)
        res = analyze_plane_conflicts(
            [t], MAPPING, plane_counts=(2, 16, 1024))
        c2 = res[2].plane_conflict
        c16 = res[16].plane_conflict
        c1024 = res[1024].plane_conflict
        assert c2 >= c16 >= c1024

    def test_overlap_independent_of_plane_count(self):
        import random
        rng = random.Random(1)
        t = trace_of([(0, address(rng.randrange(2),
                                  rng.randrange(1 << 16)))
                      for _ in range(100)])
        res = analyze_plane_conflicts([t], MAPPING,
                                      plane_counts=(2, 4096))
        assert res[2].overlapping == res[4096].overlapping

    def test_fig4_axis(self):
        assert FIG4_PLANE_COUNTS[0] == 2
        assert FIG4_PLANE_COUNTS[-1] == 32768
        assert len(FIG4_PLANE_COUNTS) == 15
