"""Suite-wide fixtures: keep tests hermetic.

The experiment pipeline persists alone-IPC results under
``REPRO_CACHE_DIR`` (default ``.repro_cache/``).  Tests must neither
read a developer's stale cache nor leave files behind, so the whole
suite runs against a throwaway cache directory.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))
